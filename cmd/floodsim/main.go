// Command floodsim runs flooding broadcasts over a dynamic model and
// reports completion statistics and, optionally, per-round trajectories.
//
// Usage:
//
//	floodsim -model SDGR -n 10000 -d 21 -trials 20 -seed 1
//	floodsim -model PDG -n 4000 -d 3 -trials 50 -trajectory
//	floodsim -model SDGR -n 10000 -d 21 -traffic -messages 16 -schedule staggered -inject-gap 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	churnnet "github.com/dyngraph/churnnet"
)

func main() {
	var (
		modelName = flag.String("model", "SDGR", "model: SDG, SDGR, PDG or PDGR")
		n         = flag.Int("n", 10000, "size parameter")
		d         = flag.Int("d", 21, "out-degree")
		trials    = flag.Int("trials", 10, "independent broadcasts (fresh network each)")
		seed      = flag.Uint64("seed", 1, "deterministic root seed")
		maxRounds = flag.Int("max-rounds", 0, "round cap (0 = default)")
		async     = flag.Bool("async", false, "asynchronous semantics (Definition 4.2)")
		traj      = flag.Bool("trajectory", false, "print per-round informed counts of trial 0")
		fastWarm  = flag.Bool("fastwarmup", false, "sample the stationary snapshot directly instead of simulating warm-up")
		floodPar  = flag.Int("floodpar", 1, "worker shards inside each broadcast (and each -fastwarmup snapshot fill); 0 picks W from GOMAXPROCS and n; results are identical at any value")
		traffic   = flag.Bool("traffic", false, "multi-message mode: inject -messages concurrent broadcasts per -schedule over one churn stream")
		messages  = flag.Int("messages", 8, "messages per trial in -traffic mode")
		schedule  = flag.String("schedule", "burst", "injection schedule in -traffic mode: burst, staggered or poisson")
		injectGap = flag.Int("inject-gap", 1, "rounds between injections (staggered) or mean inter-arrival (poisson)")
	)
	flag.Parse()

	kind, err := parseKind(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(2)
	}
	if err := validateFlags(*trials, *n, *d, *maxRounds, *floodPar); err != nil {
		usageError(err.Error())
	}
	if *traffic {
		if err := validateTrafficFlags(*messages, *schedule, *injectGap); err != nil {
			usageError(err.Error())
		}
	}
	if *floodPar == 0 {
		*floodPar = churnnet.FloodAuto
	}
	mode := churnnet.Discretized
	if *async {
		mode = churnnet.Asynchronous
	}

	if *traffic {
		runTraffic(kind, *n, *d, *trials, *seed, *maxRounds, mode, *fastWarm,
			*floodPar, *messages, *schedule, *injectGap)
		return
	}

	fmt.Printf("flooding %s (n=%d, d=%d, %d trials, mode %v)\n", kind, *n, *d, *trials, mode)

	completed := 0
	var rounds, fractions []float64
	for trial := 0; trial < *trials; trial++ {
		m := churnnet.NewReadyModelPar(kind, *n, *d, *seed+uint64(trial), *fastWarm, *floodPar)
		res := churnnet.Flood(m, churnnet.FloodOptions{
			Mode:           mode,
			MaxRounds:      *maxRounds,
			KeepTrajectory: *traj && trial == 0,
			Parallelism:    *floodPar,
		})
		if res.Completed {
			completed++
			rounds = append(rounds, float64(res.CompletionRound))
		}
		frac := res.PeakFraction
		fractions = append(fractions, frac)
		if *traj && trial == 0 {
			fmt.Println("\ntrial 0 trajectory (round: informed/alive):")
			for i := range res.Informed {
				fmt.Printf("  %3d: %d/%d\n", i, res.Informed[i], res.Alive[i])
			}
			fmt.Println()
		}
	}

	fmt.Printf("\ncompleted        %d/%d (%.1f%%)\n", completed, *trials,
		100*float64(completed)/float64(*trials))
	if len(rounds) > 0 {
		sort.Float64s(rounds)
		fmt.Printf("rounds           median %.0f, min %.0f, max %.0f\n",
			rounds[len(rounds)/2], rounds[0], rounds[len(rounds)-1])
	}
	if len(fractions) > 0 {
		sort.Float64s(fractions)
		fmt.Printf("peak informed    median %.1f%%, min %.1f%%\n",
			100*fractions[len(fractions)/2], 100*fractions[0])
	}
	if completed == 0 {
		fmt.Println("\nno completion: in models without regeneration this is the expected")
		fmt.Println("outcome at constant d (Lemma 3.5/4.10: isolated nodes persist).")
	}
}

// runTraffic is the -traffic mode: per trial, one traffic plane injects
// `messages` broadcasts per the schedule over a single churn stream,
// retiring each as it completes, and the run reports per-message
// completion-latency statistics.
func runTraffic(kind churnnet.ModelKind, n, d, trials int, seed uint64, maxRounds int,
	mode churnnet.FloodMode, fastWarm bool, floodPar, messages int, schedule string, injectGap int) {
	fmt.Printf("traffic %s (n=%d, d=%d, %d trials × %d messages, %s schedule, mode %v)\n",
		kind, n, d, trials, messages, schedule, mode)

	completed := 0
	var latencies []float64
	var mem churnnet.TrafficMemStats
	for trial := 0; trial < trials; trial++ {
		trialSeed := seed + uint64(trial)
		steps, err := churnnet.TrafficSchedule(schedule, messages, injectGap, trialSeed)
		if err != nil {
			usageError(err.Error())
		}
		m := churnnet.NewReadyModelPar(kind, n, d, trialSeed, fastWarm, floodPar)
		tr := churnnet.NewTraffic(m, churnnet.TrafficOptions{
			Mode:        mode,
			MaxRounds:   maxRounds,
			Parallelism: floodPar,
		})
		var ids []churnnet.MessageID
		next := 0
		for next < len(steps) || tr.Live() > 0 {
			for next < len(steps) && steps[next] == tr.Steps() {
				ids = append(ids, tr.Inject(churnnet.Handle{}))
				next++
			}
			tr.Step()
			for _, id := range ids {
				if tr.Status(id) == churnnet.MessageDone {
					if res := tr.Result(id); res.Completed {
						completed++
						latencies = append(latencies, float64(res.CompletionRound))
					}
					tr.Retire(id)
				}
			}
		}
		if trial == trials-1 {
			mem = tr.MemStats()
		}
		tr.Close()
	}

	if mem.Lanes > 0 {
		packed := float64(mem.PackedInformedBytes) / float64(mem.Lanes)
		baseline := float64(mem.MarksBaselineBytes) / float64(mem.Lanes)
		fmt.Printf("\ninformed state   %d slots × %d word/slot packed: %.1f B/lane vs %.1f B/lane as one Marks per lane (%.1fx)\n",
			mem.Slots, mem.WordsPerSlot, packed, baseline, baseline/packed)
	}

	total := trials * messages
	fmt.Printf("\ndelivered        %d/%d (%.1f%%)\n", completed, total,
		100*float64(completed)/float64(total))
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		fmt.Printf("latency (rounds) median %.0f, p90 %.0f, max %.0f\n",
			latencies[len(latencies)/2], latencies[len(latencies)*9/10], latencies[len(latencies)-1])
	}
	if completed == 0 {
		fmt.Println("\nno delivery: in models without regeneration this is the expected")
		fmt.Println("outcome at constant d (Lemma 3.5/4.10: isolated nodes persist).")
	}
}

// validateFlags rejects invalid flag values before any work starts; the
// returned error names the offending flag. Kept separate from main so the
// flag paths are regression-testable (see main_test.go).
func validateFlags(trials, n, d, maxRounds, floodPar int) error {
	switch {
	case trials < 1:
		return errors.New("-trials must be >= 1")
	case n < 1:
		return errors.New("-n must be >= 1")
	case d < 0:
		return errors.New("-d must be >= 0")
	case maxRounds < 0:
		return errors.New("-max-rounds must be >= 0 (0 = default)")
	case floodPar < 0:
		return errors.New("-floodpar must be >= 0 (0 = auto from GOMAXPROCS and n)")
	}
	return nil
}

// validateTrafficFlags rejects invalid -traffic mode values; schedule
// names are checked by TrafficSchedule at injection time, but a dry probe
// here reports them before any network is built.
func validateTrafficFlags(messages int, schedule string, injectGap int) error {
	switch {
	case messages < 1:
		return errors.New("-messages must be >= 1")
	case injectGap < 1:
		return errors.New("-inject-gap must be >= 1")
	}
	if _, err := churnnet.TrafficSchedule(schedule, 1, injectGap, 1); err != nil {
		return fmt.Errorf("-schedule: %v", err)
	}
	return nil
}

// usageError reports a bad flag value and exits with the conventional
// usage status 2.
func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "floodsim:", msg)
	flag.Usage()
	os.Exit(2)
}

func parseKind(s string) (churnnet.ModelKind, error) {
	for _, k := range churnnet.ModelKinds() {
		if strings.EqualFold(k.String(), s) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown model %q (want SDG, SDGR, PDG or PDGR)", s)
}
