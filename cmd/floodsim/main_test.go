package main

import "testing"

// TestValidateFlags pins the flag guard rails: every invalid value must be
// rejected (main turns the error into a usage exit with status 2 — the
// regression the `floodsim -trials 0` panic fix introduced), and valid
// combinations must pass.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                              string
		trials, n, d, maxRounds, floodPar int
		wantErr                           bool
	}{
		{"defaults", 10, 10000, 21, 0, 1, false},
		{"sharded", 10, 10000, 21, 50, 8, false},
		{"zero trials", 0, 10000, 21, 0, 1, true},
		{"negative trials", -3, 10000, 21, 0, 1, true},
		{"zero n", 10, 0, 21, 0, 1, true},
		{"negative d", 10, 10000, -1, 0, 1, true},
		{"negative max-rounds", 10, 10000, 21, -1, 1, true},
		{"auto floodpar", 10, 10000, 21, 0, 0, false},
		{"negative floodpar", 10, 10000, 21, 0, -4, true},
	}
	for _, c := range cases {
		err := validateFlags(c.trials, c.n, c.d, c.maxRounds, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
