package main

import "testing"

// TestValidateFlags pins the flag guard rails: every invalid value must be
// rejected (main turns the error into a usage exit with status 2 — the
// regression the `floodsim -trials 0` panic fix introduced), and valid
// combinations must pass.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                              string
		trials, n, d, maxRounds, floodPar int
		wantErr                           bool
	}{
		{"defaults", 10, 10000, 21, 0, 1, false},
		{"sharded", 10, 10000, 21, 50, 8, false},
		{"zero trials", 0, 10000, 21, 0, 1, true},
		{"negative trials", -3, 10000, 21, 0, 1, true},
		{"zero n", 10, 0, 21, 0, 1, true},
		{"negative d", 10, 10000, -1, 0, 1, true},
		{"negative max-rounds", 10, 10000, 21, -1, 1, true},
		{"auto floodpar", 10, 10000, 21, 0, 0, false},
		{"negative floodpar", 10, 10000, 21, 0, -4, true},
	}
	for _, c := range cases {
		err := validateFlags(c.trials, c.n, c.d, c.maxRounds, c.floodPar)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// TestValidateTrafficFlags pins the -traffic mode guard rails: invalid
// message counts, gaps and schedule names must be rejected before any
// network is built (main turns the error into a usage exit with status 2),
// and every supported schedule must pass with -floodpar semantics
// unchanged from single-message mode.
func TestValidateTrafficFlags(t *testing.T) {
	cases := []struct {
		name      string
		messages  int
		schedule  string
		injectGap int
		wantErr   bool
	}{
		{"burst defaults", 8, "burst", 1, false},
		{"staggered", 16, "staggered", 2, false},
		{"poisson", 16, "poisson", 4, false},
		{"zero messages", 0, "burst", 1, true},
		{"negative messages", -2, "burst", 1, true},
		{"zero gap", 8, "staggered", 0, true},
		{"negative gap", 8, "poisson", -1, true},
		{"unknown schedule", 8, "warp", 1, true},
	}
	for _, c := range cases {
		err := validateTrafficFlags(c.messages, c.schedule, c.injectGap)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateTrafficFlags = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}
