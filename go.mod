module github.com/dyngraph/churnnet

go 1.21
