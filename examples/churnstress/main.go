// Churn stress: the paper's central contrast, run head to head. The same
// streaming churn (one birth and one death per round) drives two networks —
// one that never repairs edges (SDG) and one that regenerates every lost
// out-edge (SDGR) — across a range of degrees. Without repair, isolated
// nodes appear and broadcasts can never complete; with repair, the network
// is an expander and every broadcast completes in O(log n) rounds.
package main

import (
	"fmt"

	churnnet "github.com/dyngraph/churnnet"
)

func main() {
	const (
		n      = 3000
		trials = 5
		seed   = 99
	)

	fmt.Printf("streaming churn, n=%d, %d broadcasts per cell\n\n", n, trials)
	fmt.Println("          ----------- SDG (no repair) ----------   --------- SDGR (repair) ---------")
	fmt.Println("   d      isolated   completed   peak informed     isolated   completed   median rds")

	for _, d := range []int{2, 4, 8, 16, 24} {
		sdgIso, sdgDone, sdgPeak := cell(churnnet.SDG, n, d, trials, seed)
		rIso, rDone, rRounds := cellRegen(churnnet.SDGR, n, d, trials, seed)
		fmt.Printf("  %2d      %7.3f%%   %8.0f%%   %12.1f%%     %7.3f%%   %8.0f%%   %10s\n",
			d, 100*sdgIso, 100*sdgDone, 100*sdgPeak, 100*rIso, 100*rDone, rRounds)
	}

	fmt.Println("\nreading: SDG isolated fraction tracks (1/6)·e^(−2d) (Lemma 3.5) and keeps")
	fmt.Println("completion at 0% until e^(−2d)·n < 1; SDGR never has isolated nodes and,")
	fmt.Println("once d supports expansion (Theorem 3.15: d ≥ 14), completes every broadcast.")
}

func cell(kind churnnet.ModelKind, n, d, trials int, seed uint64) (iso, done, peak float64) {
	for t := 0; t < trials; t++ {
		m := churnnet.NewWarmModel(kind, n, d, seed+uint64(t))
		iso += churnnet.IsolatedFraction(m.Graph())
		res := churnnet.Flood(m, churnnet.FloodOptions{})
		if res.Completed {
			done++
		}
		peak += res.PeakFraction
	}
	k := float64(trials)
	return iso / k, done / k, peak / k
}

func cellRegen(kind churnnet.ModelKind, n, d, trials int, seed uint64) (iso, done float64, rounds string) {
	var rds []int
	for t := 0; t < trials; t++ {
		m := churnnet.NewWarmModel(kind, n, d, seed+uint64(t))
		iso += churnnet.IsolatedFraction(m.Graph())
		res := churnnet.Flood(m, churnnet.FloodOptions{})
		if res.Completed {
			done++
			rds = append(rds, res.CompletionRound)
		}
	}
	rounds = "—"
	if len(rds) > 0 {
		for i := 1; i < len(rds); i++ { // insertion sort; tiny slice
			for j := i; j > 0 && rds[j] < rds[j-1]; j-- {
				rds[j], rds[j-1] = rds[j-1], rds[j]
			}
		}
		rounds = fmt.Sprintf("%d", rds[len(rds)/2])
	}
	k := float64(trials)
	return iso / k, done / k, rounds
}
