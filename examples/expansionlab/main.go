// Expansion lab: vertex-expansion profiles of all four models plus the
// static d-out baseline, at a low degree (d = 3, the isolated-node regime
// of the no-regeneration models) and at the paper's large-set-expansion
// degree (d = 20). For each network the witness search reports the
// smallest boundary/size ratio it can find in three size bands; the shape
// of the paper's Table 1 appears directly: without regeneration small
// zero-expansion witnesses exist at low d (isolated nodes) while large
// sets keep ratio ≥ 0.1, whereas regeneration expands everywhere, like
// the static baseline (Lemma B.1).
package main

import (
	"fmt"
	"math"

	churnnet "github.com/dyngraph/churnnet"
)

func main() {
	const (
		n    = 2000
		seed = 5
	)

	for _, d := range []int{3, 20} {
		fmt.Printf("d = %-3d (e^(−d/10) = %.3f, large-set band starts at %d)\n",
			d, math.Exp(-float64(d)/10), int(float64(n)*math.Exp(-float64(d)/10)))
		fmt.Println("  network     tiny (≤10)   small (≤n/10)   large (n/10..n/2)   isolated   spectral gap")
		for _, kind := range churnnet.ModelKinds() {
			m := churnnet.NewWarmModel(kind, n, d, seed)
			printProfile(kind.String(), m.Graph(), seed)
		}
		g, _ := churnnet.NewDOutGraph(n, d, seed)
		printProfile("static", g, seed)
		fmt.Println()
	}

	fmt.Println("ratios are upper bounds on h_out (best witness found). Paper shape:")
	fmt.Println("  - SDG/PDG at d=3: zero-ratio witnesses (Lemmas 3.5/4.10) but large sets ≥ 0.1;")
	fmt.Println("  - SDGR/PDGR and the static baseline: no witness below ≈ 0.1 anywhere")
	fmt.Println("    (Theorems 3.15/4.16, Lemma B.1).")

	// Time-resolved view: the incremental tracker rides the churn event
	// stream and maintains the witness families under churn, so observing
	// every round costs O(events) instead of a fresh O(n·d) search — the
	// paper's "every snapshot expands" claim, watched as a trajectory.
	fmt.Println("\ntracked h_out trajectory, SDGR d=20 vs SDG d=3 (40 rounds, incremental tracker):")
	fmt.Println("  round      SDGR min   SDG min")
	mRegen := churnnet.NewWarmModel(churnnet.SDGR, n, 20, seed)
	mPlain := churnnet.NewWarmModel(churnnet.SDG, n, 3, seed)
	trRegen := churnnet.TrackExpansion(mRegen, seed+1, churnnet.ExpansionTrackerConfig{ReseedEvery: 10})
	defer trRegen.Close()
	trPlain := churnnet.TrackExpansion(mPlain, seed+2, churnnet.ExpansionTrackerConfig{ReseedEvery: 10})
	defer trPlain.Close()
	for round := 1; round <= 40; round++ {
		mRegen.AdvanceRound()
		mPlain.AdvanceRound()
		a, b := trRegen.Observe(), trPlain.Observe()
		if round%8 == 0 {
			fmt.Printf("  %5d    %9.3f  %8.3f\n", round, a.Min, b.Min)
		}
	}
}

func printProfile(name string, g *churnnet.Graph, seed uint64) {
	p := churnnet.EstimateExpansion(g, seed, churnnet.ExpansionConfig{})
	alive := g.NumAlive()
	tiny, _ := p.MinInRange(1, 10)
	small, _ := p.MinInRange(1, alive/10)
	large, _ := p.MinInRange(alive/10+1, alive/2)
	gap := churnnet.SpectralGap(g, 80, seed)
	fmt.Printf("  %-9s  %10.3f   %13.3f   %17.3f   %8.3f%%   %12.4f\n",
		name, tiny, small, large, 100*churnnet.IsolatedFraction(g), gap)
}
