// P2P gossip: the scenario that motivates the paper's models (Sections 1.1
// and 5 — Bitcoin-like unstructured overlays). This example runs the
// *realistic* protocol — bounded address books seeded at join, ADDR gossip,
// redial on peer loss, inbound caps — side by side with the paper's
// idealized PDGR abstraction, broadcasting a stream of "transactions"
// through both and comparing the propagation-delay distributions. The
// paper's claim is that the idealization is faithful; the two columns
// should look alike.
package main

import (
	"fmt"
	"sort"

	churnnet "github.com/dyngraph/churnnet"
)

const (
	n            = 3000
	d            = 16
	transactions = 25
	gapRounds    = 8 // network churns between broadcasts
	seed         = 7
)

func main() {
	fmt.Printf("n=%d, d=%d; %d transactions, %d churn rounds apart\n\n", n, d, transactions, gapRounds)

	fmt.Println("building realistic overlay (address books + gossip + redial)...")
	ov := churnnet.NewOverlay(churnnet.OverlayConfig{N: n, D: d, MaxIn: 8 * d}, seed)
	ov.WarmUp()

	fmt.Println("building idealized PDGR model (uniform sampling)...")
	ideal := churnnet.NewWarmModel(churnnet.PDGR, n, d, seed)

	fmt.Println("\n                    --- overlay ---            --- idealized PDGR ---")
	fmt.Println("  coverage      median   p90   reached      median   p90   reached")
	ovDelays := measure(ov)
	idealDelays := measure(ideal)
	for _, row := range []string{"50%", "90%", "99%", "complete"} {
		o, i := ovDelays[row], idealDelays[row]
		fmt.Printf("  %-9s   %8s %5s %9s    %8s %5s %9s\n",
			row, o.median, o.p90, o.reached, i.median, i.p90, i.reached)
	}

	ok, stale, full := ov.DialStats()
	fmt.Printf("\noverlay redials: %d ok, %d stale-address, %d peer-full\n", ok, stale, full)
	fmt.Println("\nthe overlay's bounded, gossip-refreshed address books reproduce the")
	fmt.Println("idealized model's behavior — the paper's 'sufficiently random subset' claim.")
}

type rowStat struct{ median, p90, reached string }

func measure(m churnnet.Model) map[string]rowStat {
	targets := []struct {
		name string
		frac float64
	}{{"50%", 0.5}, {"90%", 0.9}, {"99%", 0.99}}
	delays := map[string][]float64{}
	var completions []float64

	for tx := 0; tx < transactions; tx++ {
		for i := 0; i < gapRounds; i++ {
			m.AdvanceRound()
		}
		if !m.Graph().IsAlive(m.LastBorn()) {
			m.AdvanceRound()
		}
		res := churnnet.Flood(m, churnnet.FloodOptions{KeepTrajectory: true})
		for _, tgt := range targets {
			if r := roundsTo(res, tgt.frac); r >= 0 {
				delays[tgt.name] = append(delays[tgt.name], float64(r))
			}
		}
		if res.Completed {
			completions = append(completions, float64(res.CompletionRound))
		}
	}

	out := map[string]rowStat{}
	for _, tgt := range targets {
		out[tgt.name] = summarize(delays[tgt.name])
	}
	out["complete"] = summarize(completions)
	return out
}

func summarize(xs []float64) rowStat {
	if len(xs) == 0 {
		return rowStat{median: "—", p90: "—", reached: "0/" + fmt.Sprint(transactions)}
	}
	sort.Float64s(xs)
	q := func(p float64) float64 { return xs[int(p*float64(len(xs)-1))] }
	return rowStat{
		median:  fmt.Sprintf("%.0f", q(0.5)),
		p90:     fmt.Sprintf("%.0f", q(0.9)),
		reached: fmt.Sprintf("%d/%d", len(xs), transactions),
	}
}

func roundsTo(res churnnet.FloodResult, frac float64) int {
	for i := range res.Informed {
		if res.Alive[i] > 0 && float64(res.Informed[i])/float64(res.Alive[i]) >= frac {
			return i
		}
	}
	return -1
}
