// Livenet: flooding over a *real* concurrent network. The topology is a
// snapshot of the paper's PDGR model (generated with churnnet); each node
// becomes a goroutine peer connected to its neighbors by net.Pipe
// connections carrying JSON-framed messages. A broadcast is injected at one
// peer and flooded hop by hop — the live counterpart of the simulated
// flooding process, and a template for using churnnet topologies inside
// actual networked systems.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	churnnet "github.com/dyngraph/churnnet"
)

// message is the wire format: a broadcast ID and its hop count so far.
type message struct {
	ID  int `json:"id"`
	Hop int `json:"hop"`
}

// reception reports a peer's first sight of a broadcast.
type reception struct {
	peer int
	hop  int
}

// peer floods every new message ID to all neighbors.
type peer struct {
	id       int
	inbox    chan message
	outboxes []chan message
	seen     map[int]bool
	firstRx  chan<- reception
	done     <-chan struct{}
}

func (p *peer) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-p.done:
			return
		case m := <-p.inbox:
			if p.seen[m.ID] {
				continue
			}
			p.seen[m.ID] = true
			select {
			case p.firstRx <- reception{peer: p.id, hop: m.Hop}:
			case <-p.done:
				return
			}
			next := message{ID: m.ID, Hop: m.Hop + 1}
			for _, out := range p.outboxes {
				select {
				case out <- next:
				case <-p.done:
					return
				}
			}
		}
	}
}

// connect wires two peers with a net.Pipe: each side gets a writer
// goroutine draining its outbox into the connection and a reader goroutine
// delivering arriving messages into its own inbox.
func connect(a, b *peer, wg *sync.WaitGroup, done <-chan struct{}) {
	ca, cb := net.Pipe()
	for _, end := range []struct {
		conn  net.Conn
		local *peer
	}{{ca, a}, {cb, b}} {
		out := make(chan message, 64)
		end.local.outboxes = append(end.local.outboxes, out)

		wg.Add(2)
		go func(conn net.Conn, out <-chan message) { // writer
			defer wg.Done()
			enc := json.NewEncoder(conn)
			for {
				select {
				case <-done:
					conn.Close()
					return
				case m := <-out:
					if err := enc.Encode(m); err != nil {
						return
					}
				}
			}
		}(end.conn, out)

		// Messages written by the far side surface on this connection end,
		// so the reader delivers into the local peer's inbox.
		go func(conn net.Conn, inbox chan<- message) { // reader
			defer wg.Done()
			dec := json.NewDecoder(bufio.NewReader(conn))
			for {
				var m message
				if err := dec.Decode(&m); err != nil {
					return
				}
				select {
				case inbox <- m:
				case <-done:
					return
				}
			}
		}(end.conn, end.local.inbox)
	}
}

func main() {
	numPeers := flag.Int("peers", 400, "number of peers in the frozen topology snapshot")
	degree := flag.Int("degree", 8, "out-degree d of the PDGR model")
	seed := flag.Uint64("seed", 21, "model seed")
	timeout := flag.Duration("timeout", 10*time.Second, "broadcast convergence deadline")
	flag.Parse()
	if *numPeers < 2 || *degree < 1 || *timeout <= 0 {
		fmt.Fprintln(os.Stderr, "livenet: need -peers >= 2, -degree >= 1, -timeout > 0")
		os.Exit(2)
	}
	if err := run(*numPeers, *degree, *seed, *timeout); err != nil {
		fmt.Fprintf(os.Stderr, "livenet: %v\n", err)
		os.Exit(1)
	}
}

// run builds the frozen snapshot, floods one broadcast over live pipes, and
// errors if the broadcast misses any peer before the deadline.
func run(numPeers, degree int, seed uint64, timeout time.Duration) error {
	fmt.Printf("building PDGR topology snapshot (n=%d, d=%d)...\n", numPeers, degree)
	m := churnnet.NewWarmModel(churnnet.PDGR, numPeers, degree, seed)
	g := m.Graph()

	// Freeze the snapshot into peer structs and pipe connections.
	handles := g.AliveHandles()
	index := make(map[churnnet.Handle]int, len(handles))
	peers := make([]*peer, len(handles))
	done := make(chan struct{})
	firstRx := make(chan reception, len(handles))
	var wg sync.WaitGroup
	for i, h := range handles {
		index[h] = i
		peers[i] = &peer{
			id:      i,
			inbox:   make(chan message, 256),
			seen:    map[int]bool{},
			firstRx: firstRx,
			done:    done,
		}
	}
	edges := 0
	seen := map[[2]int]bool{}
	for i, h := range handles {
		g.Neighbors(h, func(v churnnet.Handle) bool {
			j := index[v]
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if a != b && !seen[[2]int{a, b}] {
				seen[[2]int{a, b}] = true
				connect(peers[a], peers[b], &wg, done)
				edges++
			}
			return true
		})
	}
	for _, p := range peers {
		wg.Add(1)
		go p.run(&wg)
	}
	fmt.Printf("live network up: %d peers, %d pipe connections, %d goroutines\n",
		len(peers), edges, 2*2*edges+len(peers))

	start := time.Now()
	peers[0].inbox <- message{ID: 1, Hop: 0}

	received := 0
	var hops []int
	deadline := time.After(timeout)
	timedOut := false
	for received < len(peers) && !timedOut {
		select {
		case r := <-firstRx:
			received++
			hops = append(hops, r.hop)
		case <-deadline:
			timedOut = true
		}
	}
	elapsed := time.Since(start)
	close(done)
	if timedOut {
		return fmt.Errorf("timeout after %v: broadcast reached %d/%d peers", timeout, received, len(peers))
	}

	sort.Ints(hops)
	fmt.Printf("\nbroadcast reached %d peers in %v\n", len(hops), elapsed.Round(time.Microsecond))
	if len(hops) > 0 {
		fmt.Printf("first-reception hops: median %d, p90 %d, max %d (ln n = %.1f)\n",
			hops[len(hops)/2], hops[len(hops)*9/10], hops[len(hops)-1],
			math.Log(float64(numPeers)))
		fmt.Println("(asynchronous delivery races ahead of BFS order, so tail hop counts")
		fmt.Println(" exceed the synchronous round count below — the contrast between the")
		fmt.Println(" paper's Definition 4.2 and a real scheduler)")
	}

	// The simulated flooding over the same frozen snapshot must agree on
	// the hop radius.
	sim := churnnet.Flood(churnnet.NewStaticModel(g, degree), churnnet.FloodOptions{Source: handles[0]})
	fmt.Printf("simulated flooding on the same snapshot: complete in %d rounds\n", sim.CompletionRound)

	wgWait(&wg, 2*time.Second)
	return nil
}

// wgWait waits for the worker goroutines with a grace period (pipes close
// asynchronously).
func wgWait(wg *sync.WaitGroup, grace time.Duration) {
	ch := make(chan struct{})
	go func() { wg.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(grace):
	}
}
