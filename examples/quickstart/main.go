// Quickstart: build a Poisson dynamic network with edge regeneration (the
// model closest to an unstructured P2P overlay such as Bitcoin's), flood a
// message from the newest node, and print the per-round trajectory.
package main

import (
	"fmt"
	"math"

	churnnet "github.com/dyngraph/churnnet"
)

func main() {
	const (
		n    = 5000 // expected network size (λ=1, µ=1/n)
		d    = 35   // requests per node; Theorem 4.20 regime
		seed = 42
	)

	fmt.Printf("building PDGR network (n=%d, d=%d)...\n", n, d)
	m := churnnet.NewWarmModel(churnnet.PDGR, n, d, seed)
	fmt.Printf("network ready: %d nodes, %d live edges at t=%.0f\n",
		m.Graph().NumAlive(), m.Graph().NumEdgesLive(), m.Now())

	res := churnnet.Flood(m, churnnet.FloodOptions{KeepTrajectory: true})

	fmt.Println("\nround  informed   alive")
	for i := range res.Informed {
		fmt.Printf("%5d  %8d  %6d\n", i, res.Informed[i], res.Alive[i])
	}
	if res.Completed {
		fmt.Printf("\nbroadcast complete after %d rounds (O(log n) as Theorem 4.20 predicts: ln n = %.1f)\n",
			res.CompletionRound, math.Log(n))
	} else {
		fmt.Printf("\nbroadcast incomplete: %d of %d informed\n", res.FinalInformed, res.FinalAlive)
	}
}
